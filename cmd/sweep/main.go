// Command sweep drives the phase-diagram sweep subsystem
// (internal/sweep) from the command line: dense parameter grids,
// critical-noise bisection and T(n) scaling fits, all on the
// n-independent census engine by default, all bit-reproducible for a
// fixed seed at any worker count, and all resumable from a JSON
// checkpoint.
//
// Examples:
//
//	sweep grid -matrix uniform,cycle -k 3 -eps 0.05,0.1,0.2,0.3 \
//	    -delta 0.05,0.15,0.3 -n 1e5 -proto-eps 0.2 -trials 100
//	sweep bisect -matrix binary -k 2 -n 1e5 -delta 0.02 \
//	    -proto-eps 0.4 -lo 0.1 -hi 0.3 -tol 0.005 -trials 400
//	sweep scaling -matrix uniform -k 3 -eps 0.3 -decades 3-12 -trials 12
//	sweep grid ... -checkpoint sweep.ck.json   # interrupt and re-run to resume
//	sweep bisect ... -law-quant 1e-3           # Stage-2 law cache: ~order-of-
//	    # magnitude faster, each phase's law-level certificate ℓ·d_TV·sens
//	    # added to every budget (reported separately as the quant leg)
//	sweep grid ... -shard 2/4 -checkpoint shard2.json  # one slice of four hosts
//	sweep merge -out merged.json shard*.json   # recombine shard checkpoints into
//	    # the byte-identical single-host journal (resumable by one host)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/gossipkit/noisyrumor/internal/census"
	"github.com/gossipkit/noisyrumor/internal/core"
	"github.com/gossipkit/noisyrumor/internal/obs"
	"github.com/gossipkit/noisyrumor/internal/resilience"
	"github.com/gossipkit/noisyrumor/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: sweep <grid|bisect|scaling> [flags] (-h for the mode's flags)")
	}
	mode, rest := args[0], args[1:]
	switch mode {
	case "grid":
		return runGrid(rest, out)
	case "bisect":
		return runBisect(rest, out)
	case "scaling":
		return runScaling(rest, out)
	case "merge":
		return runMerge(rest, out)
	default:
		return fmt.Errorf("unknown mode %q (have grid, bisect, scaling, merge)", mode)
	}
}

// commonFlags registers the flags every mode shares.
type commonFlags struct {
	fs            *flag.FlagSet
	seed          *uint64
	workers       *int
	checkpoint    *string
	jsonOut       *bool
	engine        *string
	lawQuant      *float64
	censusTol     *float64
	metricsAddr   *string
	traceOut      *string
	metricsLinger *time.Duration
	shard         *string
}

func registerCommon(fs *flag.FlagSet) commonFlags {
	return commonFlags{
		fs:         fs,
		seed:       fs.Uint64("seed", 1, "random seed (results are a pure function of spec+seed)"),
		workers:    fs.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS; any value is bit-identical)"),
		checkpoint: fs.String("checkpoint", "", "JSON checkpoint path; an existing compatible file resumes the sweep"),
		jsonOut:    fs.Bool("json", false, "emit the full result as JSON instead of tables"),
		engine:     fs.String("engine", "census", "trial engine: census (n-independent) or O | B | P (per-node cross-checks)"),
		lawQuant: fs.Float64("law-quant", 0,
			"census Stage-2 law quantization step η: round the pool distribution onto the η-lattice and memoize the majority law, charging the law-level certificate ℓ·d_TV·sens per phase into the reported budget (0 = exact; try 1e-3)"),
		censusTol: fs.Float64("census-tol", 0,
			"census Stage-2 truncation tolerance override (0 = the engine default 1e-13)"),
		metricsAddr: fs.String("metrics-addr", "",
			"serve GET /metrics (Prometheus text), /metrics.json, /healthz and /debug/pprof on this host:port during the run (port 0 picks a free port; the bound address is printed). Metrics are write-only telemetry: results are bit-identical with or without it"),
		traceOut: fs.String("trace-out", "",
			"write NDJSON phase-trace events (census phases, law-cache lookups, trials, points, checkpoint writes) to this file"),
		metricsLinger: fs.Duration("metrics-linger", 0,
			"with -metrics-addr: keep the listener up this long after the sweep finishes, for scraping a completed run"),
		shard: fs.String("shard", "",
			"run only this index-residue slice of the sweep, as index/of (e.g. 2/4); requires -checkpoint, and `sweep merge` recombines the shard checkpoints into the byte-identical single-host journal"),
	}
}

// instrument builds the sweep's observability sinks from the metrics
// flags: a registry-backed Instrumentation, a metrics server on
// -metrics-addr, and an NDJSON tracer on -trace-out. The returned
// cleanup lingers (when asked), closes the server and flushes the
// trace file; it must run after the sweep. With neither flag set
// everything stays nil and the sweep runs exactly as before.
func (c commonFlags) instrument(out io.Writer, cache *census.LawCache) (sweep.Instrumentation, func(), error) {
	if *c.metricsAddr == "" && *c.traceOut == "" {
		return sweep.Instrumentation{}, func() {}, nil
	}
	clock := obs.WallClock{}
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	var tracer *obs.Tracer
	if *c.traceOut != "" {
		f, err := os.Create(*c.traceOut)
		if err != nil {
			return sweep.Instrumentation{}, nil, fmt.Errorf("-trace-out: %w", err)
		}
		tracer = obs.NewTracer(f, clock)
		cleanups = append(cleanups, func() { _ = f.Close() })
	}
	reg := obs.NewRegistry()
	inst := sweep.NewInstrumentation(reg, tracer, clock)
	cache.Register(reg)
	if *c.metricsAddr != "" {
		srv, err := obs.Serve(*c.metricsAddr, reg)
		if err != nil {
			cleanup()
			return sweep.Instrumentation{}, nil, err
		}
		fmt.Fprintf(out, "metrics: serving on %s\n", srv.Addr())
		linger := *c.metricsLinger
		cleanups = append(cleanups, func() {
			if linger > 0 {
				time.Sleep(linger)
			}
			_ = srv.Close()
		})
	}
	return inst, cleanup, nil
}

// validate rejects contradictory flag combinations via the shared
// table (internal/core/flags.go) instead of silently ignoring the
// losing flag — the census-only knobs have no effect on the per-node
// cross-check engines. Mode-specific flags are pure value parameters
// and stay outside the table.
func (c commonFlags) validate() error {
	set := map[string]bool{}
	c.fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	state := core.FlagState{Set: set, CensusEngine: engineName(*c.engine) == ""}
	return core.CheckFlags(state, core.FlagUniverses["sweep"])
}

// runner builds the sweep runner, sharing one Stage-2 law cache
// across all workers and points when quantization is on so the CLI
// can report cache statistics after the run. The retry policy gets a
// real sleeper — the CLI is a harness, so backoff may block — while
// jitter stays seeded, so a retried run's results are unchanged.
func (c commonFlags) runner() (sweep.Runner, *census.LawCache, error) {
	var cache *census.LawCache
	if *c.lawQuant > 0 {
		cache = census.NewLawCache()
	}
	retry := resilience.DefaultPolicy()
	retry.Sleeper = obs.WallSleeper{}
	r := sweep.Runner{Seed: *c.seed, Workers: *c.workers, Checkpoint: *c.checkpoint, Cache: cache, Retry: retry}
	if *c.shard != "" {
		sh, err := sweep.ParseShard(*c.shard)
		if err != nil {
			return sweep.Runner{}, nil, fmt.Errorf("-shard: %w", err)
		}
		r.Shard = sh
	}
	return r, cache, nil
}

// printResilienceSummary reports degradation the run recovered from;
// silent recovery would hide real infrastructure trouble.
func printResilienceSummary(out io.Writer, salvaged int, quarantined []int) {
	if salvaged > 0 {
		fmt.Fprintf(out, "checkpoint: salvaged journal dropped %d damaged point(s), recomputed\n", salvaged)
	}
	if len(quarantined) > 0 {
		fmt.Fprintf(out, "quarantined points %v: classified failures exhausted retries; re-run with the same -checkpoint to recompute them\n", quarantined)
	}
}

// runMerge implements `sweep merge -out merged.json shard*.json`:
// validate that the shard checkpoints belong to one sweep and
// recombine them into the single-host journal (byte-identical to an
// unsharded run when complete).
func runMerge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep merge", flag.ContinueOnError)
	var (
		outPath = fs.String("out", "", "path for the merged checkpoint (required)")
		partial = fs.Bool("partial", false,
			"write the union even when shards or points are missing or quarantined; the merged journal resumes on a single host, which recomputes the gaps")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("merge needs -out")
	}
	shards := fs.Args()
	if len(shards) == 0 {
		return fmt.Errorf("merge needs at least one shard checkpoint file")
	}
	rep, err := sweep.Merge(*outPath, *partial, shards...)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "merged %d shard(s) of %d (%s): %d/%d points -> %s\n",
		len(rep.Shards), rep.Of, rep.Mode, rep.Points, rep.Expected, *outPath)
	if rep.Salvaged > 0 {
		fmt.Fprintf(out, "salvage dropped %d damaged point(s); a single-host resume recomputes them\n", rep.Salvaged)
	}
	if len(rep.MissingShards) > 0 {
		fmt.Fprintf(out, "missing shards: %v\n", rep.MissingShards)
	}
	if len(rep.Missing) > 0 {
		fmt.Fprintf(out, "missing points: %v\n", rep.Missing)
	}
	if len(rep.Quarantined) > 0 {
		fmt.Fprintf(out, "quarantined points: %v\n", rep.Quarantined)
	}
	if !rep.Complete() {
		fmt.Fprintf(out, "resume the merged journal on one host to fill the gaps: sweep <mode> ... -checkpoint %s\n", *outPath)
	}
	return nil
}

// printCacheStats reports the shared law cache's lifetime accounting —
// including stores dropped at the entry cap, which would otherwise
// masquerade as a low hit rate.
func printCacheStats(out io.Writer, cache *census.LawCache) {
	if cache == nil {
		return
	}
	h, m := cache.Stats()
	fmt.Fprintf(out, "law cache: %d hits, %d misses (hit rate %.1f%%), %d entries, %d dropped stores\n",
		h, m, 100*cache.HitRate(), cache.Len(), cache.DroppedStores())
}

func runGrid(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep grid", flag.ContinueOnError)
	var (
		matrix   = fs.String("matrix", "uniform", "comma-separated matrix families (uniform | binary | identity | cycle | reset)")
		ks       = fs.String("k", "3", "comma-separated opinion counts")
		eps      = fs.String("eps", "0.1,0.2,0.3", "comma-separated channel ε values")
		deltas   = fs.String("delta", "0.1", "comma-separated initial plurality biases δ (0 = rumor spreading)")
		ns       = fs.String("n", "1e5", "comma-separated population sizes (scientific notation ok)")
		cs       = fs.String("c", "", "comma-separated Stage-2 constants c (sets ℓ=⌈c/ε²⌉; empty = default)")
		protoEps = fs.Float64("proto-eps", 0, "pin the protocol's assumed ε across the grid (0 = per-point channel ε)")
		trials   = fs.Int("trials", 50, "trials per grid point")
	)
	common := registerCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := common.validate(); err != nil {
		return err
	}
	g := sweep.Grid{
		Matrices:  splitStrings(*matrix),
		Trials:    *trials,
		ProtoEps:  *protoEps,
		Engine:    engineName(*common.engine),
		LawQuant:  *common.lawQuant,
		CensusTol: *common.censusTol,
	}
	var err error
	if g.Ks, err = parseInts(*ks); err != nil {
		return fmt.Errorf("-k: %w", err)
	}
	if g.ChannelEps, err = parseFloats(*eps); err != nil {
		return fmt.Errorf("-eps: %w", err)
	}
	if g.Deltas, err = parseFloats(*deltas); err != nil {
		return fmt.Errorf("-delta: %w", err)
	}
	if g.Ns, err = parseInt64s(*ns); err != nil {
		return fmt.Errorf("-n: %w", err)
	}
	if *cs != "" {
		if g.Cs, err = parseFloats(*cs); err != nil {
			return fmt.Errorf("-c: %w", err)
		}
	}
	r, cache, err := common.runner()
	if err != nil {
		return err
	}
	inst, obsDone, err := common.instrument(out, cache)
	if err != nil {
		return err
	}
	defer obsDone()
	r.Obs = inst
	res, err := r.RunGrid(g)
	if err != nil {
		return err
	}
	if *common.jsonOut {
		return emitJSON(out, res)
	}
	shardNote := ""
	if res.Shard != nil {
		shardNote = fmt.Sprintf(" (shard %s)", res.Shard)
	}
	fmt.Fprintf(out, "grid: %d points × %d trials, seed %d%s (total budget %.2e, quant leg %.2e)\n\n",
		len(res.Points), g.Trials, *common.seed, shardNote, res.ErrorBudget, res.QuantBudget)
	fmt.Fprintf(out, "%-8s %-3s %-9s %-6s %-10s %-8s %-9s %-16s %-10s %s\n",
		"matrix", "k", "eps", "delta", "n", "success", "trials", "wilson95", "rounds", "budget")
	for _, p := range res.Points {
		fmt.Fprintf(out, "%-8s %-3d %-9.4g %-6.3g %-10d %-8.3f %-9d [%.3f, %.3f]   %-10.1f %.2e\n",
			p.Point.Matrix, p.Point.K, p.Point.ChannelEps, p.Point.Delta, p.Point.N,
			p.SuccessRate, p.Trials, p.WilsonLo, p.WilsonHi, p.MeanRounds, p.ErrorBudget)
	}
	fmt.Fprintln(out)
	printResilienceSummary(out, res.Salvaged, res.Quarantined)
	printCacheStats(out, cache)
	return nil
}

func runBisect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep bisect", flag.ContinueOnError)
	var (
		matrix   = fs.String("matrix", "binary", "matrix family")
		k        = fs.Int("k", 2, "number of opinions")
		n        = fs.String("n", "1e5", "population size")
		delta    = fs.Float64("delta", 0.02, "initial plurality bias δ")
		protoEps = fs.Float64("proto-eps", 0.4, "the protocol's assumed ε (fixes the schedule)")
		c        = fs.Float64("c", 0, "Stage-2 constant c override (0 = default)")
		lo       = fs.Float64("lo", 0.1, "bracket low: channel ε with success < 1/2")
		hi       = fs.Float64("hi", 0.3, "bracket high: channel ε with success > 1/2")
		tol      = fs.Float64("tol", 0.005, "bracket width at which the search stops")
		trials   = fs.Int("trials", 400, "per-evaluation trial budget (Wilson-stopped)")
		batch    = fs.Int("batch", 0, "Wilson early-stopping batch size (0 = trials/8, min 8)")
		maxEvals = fs.Int("max-evals", 0, "evaluation cap (0 = 40)")
	)
	common := registerCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := common.validate(); err != nil {
		return err
	}
	nv, err := parseInt64s(*n)
	if err != nil || len(nv) != 1 {
		return fmt.Errorf("-n: want one population size, got %q", *n)
	}
	b := sweep.Bisect{
		Matrix: *matrix, K: *k, N: nv[0], Delta: *delta, ProtoEps: *protoEps, C: *c,
		Lo: *lo, Hi: *hi, Tol: *tol, Trials: *trials, Batch: *batch, MaxEvals: *maxEvals,
		Engine: engineName(*common.engine), LawQuant: *common.lawQuant, CensusTol: *common.censusTol,
	}
	r, cache, err := common.runner()
	if err != nil {
		return err
	}
	inst, obsDone, err := common.instrument(out, cache)
	if err != nil {
		return err
	}
	defer obsDone()
	r.Obs = inst
	res, err := r.RunBisect(b)
	if err != nil {
		return err
	}
	if *common.jsonOut {
		return emitJSON(out, res)
	}
	fmt.Fprintf(out, "bisect: %s k=%d n=%d δ=%v, protocol ε=%v, seed %d\n\n",
		b.Matrix, b.K, b.N, b.Delta, b.ProtoEps, *common.seed)
	fmt.Fprintf(out, "%-5s %-10s %-8s %-16s %-7s %s\n", "eval", "eps", "success", "wilson95", "trials", "budget")
	for i, ev := range res.Evals {
		fmt.Fprintf(out, "%-5d %-10.5f %-8.3f [%.3f, %.3f]   %-7d %.2e\n",
			i, ev.Eps, ev.Result.SuccessRate, ev.Result.WilsonLo, ev.Result.WilsonHi,
			ev.Result.Trials, ev.Result.ErrorBudget)
	}
	fmt.Fprintf(out, "\ncritical ε* = %.5f (bracket [%.5f, %.5f], band [%.5f, %.5f], budget %.2e, quant leg %.2e)\n",
		res.Critical, res.Lo, res.Hi, res.BandLo, res.BandHi, res.ErrorBudget, res.QuantBudget)
	printResilienceSummary(out, res.Salvaged, nil)
	printCacheStats(out, cache)
	if lpb, err := sweep.LPBoundary(b.Matrix, b.K, b.ProtoEps, b.Delta, b.Lo, b.Hi); err == nil {
		fmt.Fprintf(out, "LP majority-preservation boundary: %.5f — %s the critical band\n",
			lpb, map[bool]string{true: "inside", false: "OUTSIDE"}[res.Contains(lpb)])
	} else {
		fmt.Fprintf(out, "LP majority-preservation boundary: not bracketed by [%v, %v] (%v)\n", b.Lo, b.Hi, err)
	}
	return nil
}

func runScaling(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep scaling", flag.ContinueOnError)
	var (
		matrix   = fs.String("matrix", "uniform", "matrix family")
		k        = fs.Int("k", 3, "number of opinions")
		eps      = fs.Float64("eps", 0.3, "channel ε")
		protoEps = fs.Float64("proto-eps", 0, "the protocol's assumed ε (0 = channel ε)")
		delta    = fs.Float64("delta", 0, "initial plurality bias δ (0 = rumor spreading)")
		decades  = fs.String("decades", "3-9", "population decade range lo-hi: n = 10^lo … 10^hi")
		ns       = fs.String("n", "", "explicit comma-separated population sizes (overrides -decades)")
		trials   = fs.Int("trials", 12, "trials per population size")
	)
	common := registerCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := common.validate(); err != nil {
		return err
	}
	s := sweep.Scaling{
		Matrix: *matrix, K: *k, ChannelEps: *eps, ProtoEps: *protoEps,
		Delta: *delta, Trials: *trials, Engine: engineName(*common.engine),
		LawQuant: *common.lawQuant, CensusTol: *common.censusTol,
	}
	if *ns != "" {
		var err error
		if s.Ns, err = parseInt64s(*ns); err != nil {
			return fmt.Errorf("-n: %w", err)
		}
	} else {
		lo, hi, err := parseDecades(*decades)
		if err != nil {
			return fmt.Errorf("-decades: %w", err)
		}
		s.Ns = sweep.Decades(lo, hi)
	}
	r, cache, err := common.runner()
	if err != nil {
		return err
	}
	inst, obsDone, err := common.instrument(out, cache)
	if err != nil {
		return err
	}
	defer obsDone()
	r.Obs = inst
	res, err := r.RunScaling(s)
	if err != nil {
		return err
	}
	if *common.jsonOut {
		return emitJSON(out, res)
	}
	fmt.Fprintf(out, "scaling: %s k=%d ε=%v δ=%v, seed %d\n\n", s.Matrix, s.K, s.ChannelEps, s.Delta, *common.seed)
	fmt.Fprintf(out, "%-14s %-10s %-8s %-10s %s\n", "n", "mean T(n)", "success", "T(n)/ln n", "budget")
	for _, p := range res.Points {
		fmt.Fprintf(out, "%-14d %-10.1f %-8.3f %-10.1f %.2e\n",
			p.Point.N, p.MeanRounds, p.SuccessRate, p.MeanRounds/math.Log(float64(p.Point.N)), p.ErrorBudget)
	}
	if res.Shard != nil {
		fmt.Fprintf(out, "\nshard %s: no fit (it belongs to the merged curve; merge the shard checkpoints and resume on one host)\n", res.Shard)
	} else {
		fmt.Fprintf(out, "\nfit: T(n) = %.1f + %.1f·ln n (R²=%.4f, RMSE %.1f rounds; total budget %.2e, quant leg %.2e)\n",
			res.Fit.Intercept, res.Fit.Slope, res.Fit.R2, res.Fit.RMSE, res.ErrorBudget, res.QuantBudget)
	}
	printResilienceSummary(out, res.Salvaged, res.Quarantined)
	printCacheStats(out, cache)
	return nil
}

// engineName maps the CLI spelling to the sweep package's
// Point.Engine convention ("" = census).
func engineName(s string) string {
	if s == "census" {
		return ""
	}
	return s
}

func emitJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func splitStrings(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitStrings(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitStrings(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseInt64s accepts plain integers and scientific notation (1e9),
// rejecting values that are not exactly representable integers.
func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, p := range splitStrings(s) {
		if v, err := strconv.ParseInt(p, 10, 64); err == nil {
			out = append(out, v)
			continue
		}
		f, err := strconv.ParseFloat(p, 64)
		if err != nil || f != math.Trunc(f) || math.Abs(f) >= 1<<62 {
			return nil, fmt.Errorf("bad population %q", p)
		}
		out = append(out, int64(f))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseDecades(s string) (lo, hi int, err error) {
	// Full-match parsing: Sscanf would silently ignore trailing input
	// ("3-9x" → 3..9) instead of rejecting it.
	loStr, hiStr, ok := strings.Cut(s, "-")
	if ok {
		lo, err = strconv.Atoi(loStr)
		if err == nil {
			hi, err = strconv.Atoi(hiStr)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("want lo-hi (e.g. 3-9), got %q", s)
	}
	if lo < 1 {
		// n = 10⁰ = 1 has no schedule (the protocol needs n ≥ 2) and
		// no ln n to normalize by.
		return 0, 0, fmt.Errorf("decades start at 1 (n = 10), got %d-%d", lo, hi)
	}
	if sweep.Decades(lo, hi) == nil {
		return 0, 0, fmt.Errorf("invalid decade range %d-%d", lo, hi)
	}
	return lo, hi, nil
}
