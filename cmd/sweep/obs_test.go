package main

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter lets the test read the CLI's output while run() is still
// writing it from its own goroutine.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

var servingRe = regexp.MustCompile(`metrics: serving on (\S+)`)

// TestObsSmoke is the end-to-end observability acceptance test (and
// the `make obs-smoke` target): a real grid run with -metrics-addr
// must serve valid Prometheus text with the key metrics, a parseable
// JSON snapshot, a 200 /healthz, a usable pprof profile and an NDJSON
// trace file — while the checkpoint stays byte-identical to an
// uninstrumented run of the same spec.
func TestObsSmoke(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.ndjson")
	grid := []string{"grid", "-matrix", "uniform", "-k", "2", "-eps", "0.1,0.2,0.3",
		"-delta", "0.1", "-n", "2000", "-trials", "4", "-seed", "11", "-law-quant", "1e-3"}

	var out syncWriter
	done := make(chan error, 1)
	go func() {
		done <- run(append(grid,
			"-metrics-addr", "127.0.0.1:0",
			"-metrics-linger", "20s",
			"-trace-out", tracePath,
			"-checkpoint", filepath.Join(dir, "obs.ck.json"),
		), &out)
	}()

	// The listener binds (and prints its address) before the sweep
	// starts; poll briefly for the line.
	var addr string
	for i := 0; i < 100 && addr == ""; i++ {
		if m := servingRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("no 'metrics: serving on' line in output:\n%s", out.String())
	}
	base := "http://" + addr

	get := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// Wait for the sweep itself to finish (all counters final) by
	// polling /metrics for the last grid point. The server then
	// lingers, so every scrape below sees the completed run.
	wantPoints := "sweep_points_total 3"
	var text string
	for i := 0; i < 200; i++ {
		_, body := get("/metrics")
		text = string(body)
		if strings.Contains(text, wantPoints) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE sweep_points_total counter",
		wantPoints,
		"# TYPE lawcache_hits_total counter",
		"lawcache_hits_total ",
		"lawcache_misses_total ",
		"# TYPE census_quant_budget histogram",
		"census_quant_budget_bucket{le=\"+Inf\"}",
		"census_quant_budget_sum",
		"sweep_trials_total 12",
		"census_phases_total{stage=\"1\"}",
		"lawcache_entries ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	if code, body := get("/healthz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("/healthz = %d %q, want 200 \"ok\\n\"", code, body)
	}

	_, jsBody := get("/metrics.json")
	var snap struct {
		Metrics []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(jsBody, &snap); err != nil {
		t.Errorf("/metrics.json does not parse: %v\n%s", err, jsBody)
	} else if len(snap.Metrics) == 0 {
		t.Error("/metrics.json has no metrics")
	}

	// A short CPU profile must come back as a parseable (gzipped
	// protobuf) pprof payload.
	if code, body := get("/debug/pprof/profile?seconds=1"); code != http.StatusOK {
		t.Errorf("/debug/pprof/profile = %d: %s", code, body)
	} else if len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Errorf("/debug/pprof/profile is not gzip (lead bytes % x)", body[:min(len(body), 2)])
	} else if zr, err := gzip.NewReader(bytes.NewReader(body)); err != nil {
		t.Errorf("profile gzip: %v", err)
	} else if _, err := io.ReadAll(zr); err != nil {
		t.Errorf("profile gzip body: %v", err)
	}

	// The trace file holds one JSON object per line.
	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	lines := 0
	sc := bufio.NewScanner(tf)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Error("trace file is empty")
	}

	// Same spec without any instrumentation: byte-identical checkpoint.
	var plain strings.Builder
	if err := run(append(grid, "-checkpoint", filepath.Join(dir, "plain.ck.json")), &plain); err != nil {
		t.Fatal(err)
	}
	obsCk, err := os.ReadFile(filepath.Join(dir, "obs.ck.json"))
	if err != nil {
		t.Fatal(err)
	}
	plainCk, err := os.ReadFile(filepath.Join(dir, "plain.ck.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(obsCk, plainCk) {
		t.Errorf("checkpoint differs with metrics on:\n%s\nvs\n%s", obsCk, plainCk)
	}

	// The lingering run must not be left behind when the test ends:
	// closing the listener is cleanup's job, but the linger keeps the
	// goroutine alive past it — just verify it has not failed so far.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("instrumented run failed: %v", err)
		}
	default:
		// still lingering; fine
	}
}
