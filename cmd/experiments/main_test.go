package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gossipkit/noisyrumor/internal/core"
)

func TestRunSingleExperimentQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-run", "E14", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E14") || !strings.Contains(out, "Lemma 8") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestWriteMarkdownFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.md")
	if err := run([]string{"-run", "E12", "-quick", "-writefile", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{"# EXPERIMENTS", "### E12", "Lemma 17"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q", want)
		}
	}
}

func TestWriteCSVDir(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "E14", "-quick", "-csvdir", dir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 { // E14 emits three tables
		t.Fatalf("wrote %d CSVs, want 3", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "e14_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "grid points") {
		t.Fatalf("csv content wrong: %s", data)
	}
}

func TestRunParallelBackendThreads(t *testing.T) {
	// The -backend/-threads axes must reach the trial runner: a quick
	// experiment on the parallel backend with a pinned thread count
	// must complete and report normally.
	var b strings.Builder
	if err := run([]string{"-run", "E1", "-quick", "-backend", "parallel", "-threads", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "E1") {
		t.Fatalf("unexpected output:\n%s", b.String())
	}
}

func TestRunRejectsBadBackendAndThreads(t *testing.T) {
	if err := run([]string{"-run", "E1", "-quick", "-backend", "warp"}, io.Discard); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := run([]string{"-run", "E1", "-quick", "-threads", "-3"}, io.Discard); err == nil {
		t.Fatal("negative thread count accepted")
	}
}

// TestRunRejectsContradictoryFlags: combinations the trial runner
// would silently ignore must be rejected, one case per combination.
func TestRunRejectsContradictoryFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"backend with census engine", []string{"-run", "E1", "-quick", "-engine", "census", "-backend", "parallel"}},
		{"threads with census engine", []string{"-run", "E1", "-quick", "-engine", "census", "-threads", "8"}},
		{"threads without parallel backend", []string{"-run", "E1", "-quick", "-threads", "4"}},
		{"threads with batch backend", []string{"-run", "E1", "-quick", "-backend", "batch", "-threads", "4"}},
		{"law-quant with per-node engine", []string{"-run", "E1", "-quick", "-engine", "B", "-law-quant", "1e-3"}},
		{"census-tol with per-node engine", []string{"-run", "E1", "-quick", "-engine", "O", "-census-tol", "1e-9"}},
		{"law-quant on a non-sweep experiment without census engine",
			[]string{"-run", "E1", "-quick", "-law-quant", "1e-3"}},
		{"census-tol on a non-sweep experiment without census engine",
			[]string{"-run", "E4", "-quick", "-census-tol", "1e-9"}},
		{"law-quant on a sweep-driven experiment with a per-node engine",
			[]string{"-run", "E21", "-quick", "-engine", "B", "-law-quant", "1e-3"}},
	}
	for _, c := range cases {
		if err := run(c.args, io.Discard); err == nil {
			t.Errorf("%s: accepted silently", c.name)
		}
	}
	// The census engine without the per-node knobs must still run.
	var b strings.Builder
	if err := run([]string{"-run", "E1", "-quick", "-engine", "census"}, &b); err != nil {
		t.Fatalf("census engine rejected: %v", err)
	}
	if !strings.Contains(b.String(), "E1") {
		t.Fatalf("unexpected output:\n%s", b.String())
	}
	// The census knobs with the census engine — and with no explicit
	// engine at all (the sweep-driven E21/E22 run census regardless) —
	// are the intended uses.
	if err := run([]string{"-run", "E1", "-quick", "-engine", "census", "-law-quant", "1e-3", "-census-tol", "1e-9"},
		io.Discard); err != nil {
		t.Fatalf("census engine with knobs rejected: %v", err)
	}
	if err := run([]string{"-run", "E21", "-quick", "-law-quant", "1e-3"}, io.Discard); err != nil {
		t.Fatalf("E21 with -law-quant rejected: %v", err)
	}
}

// TestFlagUniverseMatches: the binary's registered flag set is
// exactly the universe declared in core.FlagUniverses["experiments"], so a
// new flag cannot ship without classifying its interactions in the
// shared rejection table (see internal/core/flags.go).
func TestFlagUniverseMatches(t *testing.T) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	_ = registerFlags(fs)
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { got[f.Name] = true })
	want := map[string]bool{}
	for _, name := range core.FlagUniverses["experiments"] {
		want[name] = true
	}
	for name := range got {
		if !want[name] {
			t.Errorf("flag -%s is registered but missing from core.FlagUniverses[%q]", name, "experiments")
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("core.FlagUniverses[%q] lists -%s but the binary does not register it", "experiments", name)
		}
	}
}
