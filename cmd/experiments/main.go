// Command experiments runs the paper-validation experiment suite
// (E1–E22, see DESIGN.md §3) and prints each report; with -write it
// also regenerates EXPERIMENTS.md.
//
// Examples:
//
//	experiments -run E5                 # one experiment, full size
//	experiments -run all -quick         # the whole suite, CI scale
//	experiments -run all -write         # regenerate EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/gossipkit/noisyrumor/internal/core"
	"github.com/gossipkit/noisyrumor/internal/model"
	"github.com/gossipkit/noisyrumor/internal/obs"
	"github.com/gossipkit/noisyrumor/internal/sim"
	"github.com/gossipkit/noisyrumor/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// cliFlags is the binary's full flag set; registration is separate
// from run so the tests can assert it matches the CLI's declared
// universe in core.FlagUniverses.
type cliFlags struct {
	runID       *string
	seed        *uint64
	quick       *bool
	write       *string
	writeMD     *bool
	csvDir      *string
	workers     *int
	backend     *string
	engine      *string
	threads     *int
	lawQuant    *float64
	censusTol   *float64
	metricsAddr *string
	traceOut    *string
}

func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		runID:   fs.String("run", "all", "experiment ID (E1…E22) or 'all'"),
		seed:    fs.Uint64("seed", 20160725, "suite seed (default: PODC'16 date)"),
		quick:   fs.Bool("quick", false, "CI-scale populations and trial counts"),
		write:   fs.String("writefile", "", "write a markdown report to this file"),
		writeMD: fs.Bool("write", false, "shorthand for -writefile EXPERIMENTS.md"),
		csvDir:  fs.String("csvdir", "", "also write every result table as CSV into this directory"),
		workers: fs.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS)"),
		backend: fs.String("backend", "",
			"sampling backend for protocol trials ("+strings.Join(model.BackendNames(), ", ")+"; empty = loop)"),
		engine: fs.String("engine", "",
			"communication engine for protocol trials ("+strings.Join(model.ProcessNames(), ", ")+"; empty = O; census runs trials on the n-independent aggregate engine)"),
		threads: fs.Int("threads", 0,
			"intra-phase worker count for the parallel backend (0 = GOMAXPROCS)"),
		lawQuant: fs.Float64("law-quant", 0,
			"census Stage-2 law quantization step η for census-engine trials, incl. the sweep-driven E21/E22 (0 = exact; try 1e-3; the law-level certificate ℓ·d_TV·sens is charged into every budget)"),
		censusTol: fs.Float64("census-tol", 0,
			"census Stage-2 truncation tolerance override for census-engine trials (0 = the engine default 1e-13)"),
		metricsAddr: fs.String("metrics-addr", "",
			"serve GET /metrics (Prometheus text), /metrics.json, /healthz and /debug/pprof on this host:port while the suite runs (port 0 picks a free port; the bound address is printed). Write-only telemetry: results are bit-identical with or without it"),
		traceOut: fs.String("trace-out", "",
			"write NDJSON phase-trace events (census phases, law-cache lookups, trials, points, checkpoint writes) to this file"),
	}
}

// instrument builds the suite's observability sinks from -metrics-addr
// and -trace-out; with neither set it returns a zero Instrumentation
// and the experiments run exactly as before. The cleanup closes the
// server and flushes the trace file.
func (cf *cliFlags) instrument(out io.Writer) (sweep.Instrumentation, func(), error) {
	if *cf.metricsAddr == "" && *cf.traceOut == "" {
		return sweep.Instrumentation{}, func() {}, nil
	}
	clock := obs.WallClock{}
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	var tracer *obs.Tracer
	if *cf.traceOut != "" {
		f, err := os.Create(*cf.traceOut)
		if err != nil {
			return sweep.Instrumentation{}, nil, fmt.Errorf("-trace-out: %w", err)
		}
		tracer = obs.NewTracer(f, clock)
		cleanups = append(cleanups, func() { _ = f.Close() })
	}
	reg := obs.NewRegistry()
	inst := sweep.NewInstrumentation(reg, tracer, clock)
	if *cf.metricsAddr != "" {
		srv, err := obs.Serve(*cf.metricsAddr, reg)
		if err != nil {
			cleanup()
			return sweep.Instrumentation{}, nil, err
		}
		fmt.Fprintf(out, "metrics: serving on %s\n", srv.Addr())
		cleanups = append(cleanups, func() { _ = srv.Close() })
	}
	return inst, cleanup, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	cf := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runID, seed, quick, write, writeMD, csvDir := cf.runID, cf.seed, cf.quick, cf.write, cf.writeMD, cf.csvDir
	workers, backend, engine, threads := cf.workers, cf.backend, cf.engine, cf.threads
	lawQuant, censusTol := cf.lawQuant, cf.censusTol
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if _, err := model.BackendByName(*backend); err != nil {
		return err
	}
	proc, err := model.ProcessByName(*engine)
	if err != nil {
		return err
	}
	if *threads < 0 {
		return fmt.Errorf("-threads must be ≥ 0, got %d", *threads)
	}
	cfg := sim.Config{Seed: *seed, Quick: *quick, Workers: *workers, Backend: *backend, Engine: *engine,
		Threads: *threads, LawQuant: *lawQuant, CensusTol: *censusTol}
	inst, obsDone, err := cf.instrument(out)
	if err != nil {
		return err
	}
	defer obsDone()
	cfg.Obs = inst

	var exps []sim.Experiment
	if strings.EqualFold(*runID, "all") {
		exps = sim.Registry()
	} else {
		e, ok := sim.ByID(*runID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have E1…E22)", *runID)
		}
		exps = []sim.Experiment{e}
	}

	// Reject contradictory flag combinations via the shared table
	// (internal/core/flags.go). The census knobs reach census-engine
	// trials only: protocol trials under -engine census, and the
	// sweep-driven E21/E22 (census regardless of -engine, unless an
	// explicit -engine override signals per-node intent).
	sweepDriven := false
	for _, e := range exps {
		if e.ID == "E21" || e.ID == "E22" {
			sweepDriven = true
			break
		}
	}
	state := core.FlagState{
		Set:          set,
		CensusEngine: proc == model.ProcessCensus,
		Backend:      *backend,
		SweepDriven:  sweepDriven && !set["engine"],
	}
	if err := core.CheckFlags(state, core.FlagUniverses["experiments"]); err != nil {
		return err
	}

	var reports []*sim.Report
	for _, e := range exps {
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(out, rep.Text())
		fmt.Fprintf(out, "(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		reports = append(reports, rep)
	}

	path := *write
	if *writeMD && path == "" {
		path = "EXPERIMENTS.md"
	}
	if path != "" {
		if err := writeMarkdown(path, cfg, reports); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	if *csvDir != "" {
		n, err := writeCSVs(*csvDir, reports)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d CSV tables to %s\n", n, *csvDir)
	}
	return nil
}

// writeCSVs dumps every table of every report as
// <dir>/<id>_<index>.csv and returns how many files were written.
func writeCSVs(dir string, reports []*sim.Report) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	written := 0
	for _, r := range reports {
		for i, t := range r.Tables {
			name := fmt.Sprintf("%s_%d.csv", strings.ToLower(r.ID), i)
			if err := os.WriteFile(filepath.Join(dir, name), []byte(t.CSV()), 0o644); err != nil {
				return written, err
			}
			written++
		}
	}
	return written, nil
}

func writeMarkdown(path string, cfg sim.Config, reports []*sim.Report) error {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	b.WriteString("Reproduction record for *Noisy Rumor Spreading and Plurality Consensus*\n")
	b.WriteString("(Fraigniaud & Natale, PODC 2016). The paper is a theory paper with no\n")
	b.WriteString("tables or figures of its own; each experiment below validates one of its\n")
	b.WriteString("claims (theorem, lemma, worked example or appendix discussion) against\n")
	b.WriteString("simulation or exact computation. See DESIGN.md §3 for the experiment\n")
	b.WriteString("index and the expected shapes.\n\n")
	fmt.Fprintf(&b, "Generated by `go run ./cmd/experiments -run all%s -seed %d -write`.\n\n",
		map[bool]string{true: " -quick", false: ""}[cfg.Quick], cfg.Seed)
	for _, r := range reports {
		b.WriteString(r.Markdown())
		b.WriteString("\n---\n\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
