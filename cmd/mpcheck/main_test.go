package main

import (
	"io"
	"strings"
	"testing"
)

func TestReadMatrix(t *testing.T) {
	in := strings.NewReader("# comment\n0.7 0.3\n\n0.2 0.8\n")
	m, err := readMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 || m.At(0, 1) != 0.3 {
		t.Fatalf("matrix wrong: %v", m)
	}
	if _, err := readMatrix(strings.NewReader("0.5 x\n")); err == nil {
		t.Fatal("bad entry accepted")
	}
	if _, err := readMatrix(strings.NewReader("0.5 0.4\n0.2 0.8\n")); err == nil {
		t.Fatal("non-stochastic matrix accepted")
	}
}

func TestParseBuiltin(t *testing.T) {
	good := []string{"uniform:3:0.2", "cycle:4:0.1", "binary:0.25", "reset:3:0.5"}
	for _, spec := range good {
		if _, err := parseBuiltin(spec); err != nil {
			t.Fatalf("parseBuiltin(%s): %v", spec, err)
		}
	}
	bad := []string{"", "uniform", "uniform:x:0.2", "uniform:3:y", "binary", "mystery:3:0.2"}
	for _, spec := range bad {
		if _, err := parseBuiltin(spec); err == nil {
			t.Fatalf("parseBuiltin(%s) accepted", spec)
		}
	}
}

func TestRunRecoversPaperWitness(t *testing.T) {
	// The Section-4 counterexample: run should report NOT m.p. and the
	// witness (0.55, 0.45, 0).
	var b strings.Builder
	err := run([]string{"-builtin", "cycle:3:0.1", "-eps", "0.1", "-delta", "0.1", "-opinion", "0"},
		strings.NewReader(""), &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "majority-preserving: false") {
		t.Fatalf("cycle not flagged:\n%s", out)
	}
	if !strings.Contains(out, "0.5500, 0.4500, 0.0000") {
		t.Fatalf("paper witness missing:\n%s", out)
	}
}

func TestRunUniformAllOpinions(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-builtin", "uniform:3:0.2", "-eps", "0.1", "-delta", "0.2"},
		strings.NewReader(""), &b)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "majority-preserving: true") != 3 {
		t.Fatalf("expected 3 positive verdicts:\n%s", b.String())
	}
}

func TestRunStdinMatrix(t *testing.T) {
	err := run([]string{"-eps", "0.05", "-delta", "0.1", "-opinion", "1"},
		strings.NewReader("0.8 0.2\n0.3 0.7\n"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFormatDist(t *testing.T) {
	if got := formatDist([]float64{0.5, 0.5}); got != "(0.5000, 0.5000)" {
		t.Fatalf("formatDist = %q", got)
	}
}
