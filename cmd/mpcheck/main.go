// Command mpcheck decides whether a noise matrix is
// (ε,δ)-majority-preserving (Definition 2 of the paper) using the
// exact Section-4 linear program, and reports the worst-case witness
// distribution.
//
// The matrix is read as k lines of k whitespace-separated row
// probabilities from stdin or from -file:
//
//	$ printf '0.6 0.4 0\n0 0.6 0.4\n0.4 0 0.6\n' | mpcheck -eps 0.1 -delta 0.1
//
// Built-in example matrices can be selected with -builtin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/gossipkit/noisyrumor"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("mpcheck", flag.ContinueOnError)
	var (
		eps     = fs.Float64("eps", 0.1, "ε of the (ε,δ)-m.p. property")
		delta   = fs.Float64("delta", 0.1, "δ of the (ε,δ)-m.p. property")
		opinion = fs.Int("opinion", -1, "check w.r.t. this opinion only (-1 = all)")
		file    = fs.String("file", "", "read the matrix from this file instead of stdin")
		builtin = fs.String("builtin", "", "use a built-in matrix: uniform:k:eps | cycle:k:eps | binary:eps | reset:k:rho")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var nm *noisyrumor.NoiseMatrix
	var err error
	switch {
	case *builtin != "":
		nm, err = parseBuiltin(*builtin)
	case *file != "":
		var f *os.File
		f, err = os.Open(*file)
		if err == nil {
			defer f.Close()
			nm, err = readMatrix(f)
		}
	default:
		nm, err = readMatrix(stdin)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "matrix (k=%d):\n%s", nm.K(), nm)
	if e, ok := nm.SufficientMP(*delta); ok {
		fmt.Fprintf(out, "Eq. (18) sufficient condition holds at δ=%v with ε=(p−q_u)/2=%.4f\n", *delta, e)
	}

	check := func(m int) error {
		res, err := nm.IsMajorityPreserving(m, *eps, *delta)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "opinion %d: (%v, %v)-majority-preserving: %v\n", m, *eps, *delta, res.MP)
		if res.WorstRival >= 0 {
			fmt.Fprintf(out, "  worst kept bias %.6f (needs > ε·δ = %.6f) against rival %d\n",
				res.WorstBias, *eps**delta, res.WorstRival)
			fmt.Fprintf(out, "  worst-case δ-biased distribution: %v\n", formatDist(res.WorstDist))
		}
		sup, err := nm.MaxEpsilonMP(m, *delta, 1e-9)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  supremum ε at δ=%v: %.6f\n", *delta, sup)
		return nil
	}

	if *opinion >= 0 {
		return check(*opinion)
	}
	for m := 0; m < nm.K(); m++ {
		if err := check(m); err != nil {
			return err
		}
	}
	return nil
}

func parseBuiltin(spec string) (*noisyrumor.NoiseMatrix, error) {
	parts := strings.Split(spec, ":")
	bad := func() (*noisyrumor.NoiseMatrix, error) {
		return nil, fmt.Errorf("bad builtin spec %q", spec)
	}
	switch parts[0] {
	case "uniform", "cycle", "reset":
		if len(parts) != 3 {
			return bad()
		}
		k, err1 := strconv.Atoi(parts[1])
		v, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return bad()
		}
		switch parts[0] {
		case "uniform":
			return noisyrumor.UniformNoise(k, v)
		case "cycle":
			return noisyrumor.DominantCycleNoise(k, v)
		default:
			return noisyrumor.ResetNoise(k, v)
		}
	case "binary":
		if len(parts) != 2 {
			return bad()
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return bad()
		}
		return noisyrumor.BinaryNoise(v)
	default:
		return bad()
	}
}

func readMatrix(r io.Reader) (*noisyrumor.NoiseMatrix, error) {
	var rows [][]float64
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var row []float64
		for _, f := range strings.Fields(line) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("bad entry %q: %w", f, err)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return noisyrumor.NewNoiseMatrix(rows)
}

func formatDist(c []float64) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprintf("%.4f", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
