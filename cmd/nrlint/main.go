// nrlint is the repo's project-specific multichecker: it runs the
// internal/analyzers suite (determinism, overflow, budget, rngfork,
// detcall, budgetflow, obswrite) over every package of the module —
// bottom-up over the import DAG, so the interprocedural passes see
// dependency summaries — and fails when any finding survives the
// //nrlint:allow suppression filter, including policy findings for
// bare (unjustified) or stale suppressions. `make lint` and CI run
// it; see DESIGN.md "Statically enforced contracts".
//
// Usage:
//
//	nrlint [-run determinism,overflow] [-format text|json|sarif] [-list] [-v] [dir ...]
//
// With no directories it lints the whole module containing the
// working directory. Exit status: 0 clean, 1 findings, 2 load or
// internal error (a package failing to load mid-DAG is an internal
// error, not a silent skip: its dependents' facts would be
// incomplete).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/gossipkit/noisyrumor/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// A finding is one surviving diagnostic, resolved to a position and
// the module-relative file path — the shape all three output formats
// consume.
type finding struct {
	File     string `json:"file"` // module-relative, forward slashes
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nrlint", flag.ContinueOnError)
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	verbose := fs.Bool("v", false, "report per-package progress and suppressed-finding counts")
	fs.SetOutput(errOut)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(errOut, "nrlint: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}
	suite := analyzers.All()
	if *runList != "" {
		suite = nil
		for _, name := range strings.Split(*runList, ",") {
			a := analyzers.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(errOut, "nrlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}
	active := map[string]bool{}
	for _, a := range suite {
		active[a.Name] = true
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errOut, "nrlint:", err)
		return 2
	}
	loader, err := analyzers.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(errOut, "nrlint:", err)
		return 2
	}
	dirs := fs.Args()
	if len(dirs) == 0 || (len(dirs) == 1 && (dirs[0] == "./..." || dirs[0] == "...")) {
		dirs, err = analyzers.PackageDirs(loader.ModuleRoot)
		if err != nil {
			fmt.Fprintln(errOut, "nrlint:", err)
			return 2
		}
	}

	results, err := loader.RunDirs(dirs, suite)
	if err != nil {
		fmt.Fprintln(errOut, "nrlint:", err)
		return 2
	}
	var findings []finding
	for _, res := range results {
		raw := len(res.Diags)
		diags := analyzers.NewSuppressor(loader.Fset, res.Pkg.Files).Filter(res.Diags,
			func(name string) bool { return analyzers.ByName(name) != nil },
			func(name string) bool { return active[name] })
		if *verbose {
			fmt.Fprintf(errOut, "nrlint: %s: %d finding(s), %d suppressed\n", res.Pkg.Path, len(diags), raw-len(diags))
		}
		for _, d := range diags {
			p := loader.Fset.Position(d.Pos)
			rel, err := filepath.Rel(loader.ModuleRoot, p.Filename)
			if err != nil {
				rel = p.Filename
			}
			findings = append(findings, finding{
				File:     filepath.ToSlash(rel),
				Line:     p.Line,
				Column:   p.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(errOut, "nrlint:", err)
			return 2
		}
	case "sarif":
		if err := writeSARIF(out, suite, findings); err != nil {
			fmt.Fprintln(errOut, "nrlint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintf(out, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(errOut, "nrlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
