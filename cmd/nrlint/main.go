// nrlint is the repo's project-specific multichecker: it runs the
// internal/analyzers suite (determinism, overflow, budget, rngfork)
// over every package of the module and fails when any finding
// survives the //nrlint:allow suppression filter — including policy
// findings for bare (unjustified) suppressions. `make lint` and CI
// run it; see DESIGN.md "Statically enforced contracts".
//
// Usage:
//
//	nrlint [-run determinism,overflow] [-list] [-v] [dir ...]
//
// With no directories it lints the whole module containing the
// working directory. Exit status: 0 clean, 1 findings, 2 load or
// internal error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/gossipkit/noisyrumor/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nrlint", flag.ContinueOnError)
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	verbose := fs.Bool("v", false, "report per-package progress and suppressed-finding counts")
	fs.SetOutput(errOut)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite := analyzers.All()
	if *runList != "" {
		suite = nil
		for _, name := range strings.Split(*runList, ",") {
			a := analyzers.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(errOut, "nrlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errOut, "nrlint:", err)
		return 2
	}
	loader, err := analyzers.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(errOut, "nrlint:", err)
		return 2
	}
	dirs := fs.Args()
	if len(dirs) == 0 || (len(dirs) == 1 && (dirs[0] == "./..." || dirs[0] == "...")) {
		dirs, err = analyzers.PackageDirs(loader.ModuleRoot)
		if err != nil {
			fmt.Fprintln(errOut, "nrlint:", err)
			return 2
		}
	}

	findings := 0
	for _, dir := range dirs {
		pkg, diags, err := loader.Run(dir, suite)
		if err != nil {
			fmt.Fprintln(errOut, "nrlint:", err)
			return 2
		}
		raw := len(diags)
		diags = analyzers.NewSuppressor(loader.Fset, pkg.Files).Filter(diags,
			func(name string) bool { return analyzers.ByName(name) != nil })
		if *verbose {
			fmt.Fprintf(errOut, "nrlint: %s: %d finding(s), %d suppressed\n", pkg.Path, len(diags), raw-len(diags))
		}
		for _, d := range diags {
			p := loader.Fset.Position(d.Pos)
			rel, err := filepath.Rel(loader.ModuleRoot, p.Filename)
			if err != nil {
				rel = p.Filename
			}
			fmt.Fprintf(out, "%s:%d:%d: [%s] %s\n", rel, p.Line, p.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(errOut, "nrlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
