package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("nrlint -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"determinism", "overflow", "budget", "rngfork"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("nrlint -run nosuch exited %d, want 2", code)
	}
}

// TestFixtureFindingsFailTheRun drives the binary's pipeline end to
// end over the overflow fixture: the deliberate violations must
// surface as findings and exit status 1 — the acceptance property
// that reintroducing the PR-4 wrap pattern makes `make lint` fail.
func TestFixtureFindingsFailTheRun(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "analyzers", "testdata", "src", "overflow")
	var out, errOut bytes.Buffer
	code := run([]string{"-run", "overflow", dir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("nrlint on the overflow fixture exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	for _, frag := range []string{"narrowing conversion", "unchecked int64"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("findings missing %q:\n%s", frag, out.String())
		}
	}
}

// TestCleanPackagePasses runs the full suite over a package that must
// stay clean (internal/checked, the blessed guard helpers).
func TestCleanPackagePasses(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "checked")
	var out, errOut bytes.Buffer
	if code := run([]string{dir}, &out, &errOut); code != 0 {
		t.Fatalf("nrlint on internal/checked exited %d:\n%s%s", code, out.String(), errOut.String())
	}
}
