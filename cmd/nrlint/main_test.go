package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("nrlint -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"determinism", "overflow", "budget", "rngfork", "detcall", "budgetflow", "obswrite"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("nrlint -run nosuch exited %d, want 2", code)
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-format", "xml"}, &out, &errOut); code != 2 {
		t.Fatalf("nrlint -format xml exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown -format") {
		t.Errorf("missing format error, got: %s", errOut.String())
	}
}

// TestNewAnalyzersRunnable pins that the interprocedural passes are
// addressable via -run, not just present in -list.
func TestNewAnalyzersRunnable(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "checked")
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "detcall,budgetflow,obswrite", dir}, &out, &errOut); code != 0 {
		t.Fatalf("nrlint -run detcall,budgetflow,obswrite exited %d:\n%s%s", code, out.String(), errOut.String())
	}
}

// TestFixtureFindingsFailTheRun drives the binary's pipeline end to
// end over the overflow fixture: the deliberate violations must
// surface as findings and exit status 1 — the acceptance property
// that reintroducing the PR-4 wrap pattern makes `make lint` fail.
func TestFixtureFindingsFailTheRun(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "analyzers", "testdata", "src", "overflow")
	var out, errOut bytes.Buffer
	code := run([]string{"-run", "overflow", dir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("nrlint on the overflow fixture exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	for _, frag := range []string{"narrowing conversion", "unchecked int64"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("findings missing %q:\n%s", frag, out.String())
		}
	}
}

// TestCleanPackagePasses runs the full suite over a package that must
// stay clean (internal/checked, the blessed guard helpers).
func TestCleanPackagePasses(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "checked")
	var out, errOut bytes.Buffer
	if code := run([]string{dir}, &out, &errOut); code != 0 {
		t.Fatalf("nrlint on internal/checked exited %d:\n%s%s", code, out.String(), errOut.String())
	}
}

// TestMidDAGLoadFailureExitsTwo is the regression for the silent-skip
// bug class: a package that fails to type-check must abort the whole
// run with exit 2 — never exit 0/1 with its dependents analyzed
// against incomplete facts.
func TestMidDAGLoadFailureExitsTwo(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/brokenmod\n\ngo 1.24\n")
	// a is the dependency and it does not type-check.
	write("a/a.go", "package a\n\nfunc Broken() int { return undefinedIdent }\n")
	// b depends on a: facts for a can never be complete.
	write("b/b.go", "package b\n\nimport \"example.com/brokenmod/a\"\n\nfunc Use() int { return a.Broken() }\n")
	t.Chdir(root)
	var out, errOut bytes.Buffer
	code := run([]string{filepath.Join(root, "a"), filepath.Join(root, "b")}, &out, &errOut)
	if code != 2 {
		t.Fatalf("nrlint on a broken module exited %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "mid-DAG") {
		t.Errorf("stderr does not name the mid-DAG failure: %s", errOut.String())
	}
}

func TestJSONFormat(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "analyzers", "testdata", "src", "overflow")
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "overflow", "-format", "json", dir}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var findings []finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-format json output is not a findings array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path not module-relative: %s", f.File)
		}
	}
}

// TestSARIFOutputValidates checks the emitted SARIF against the
// 2.1.0 structural rules GitHub's ingestion relies on — offline, via
// validateSARIF below, since the container has no network to fetch
// the JSON schema. Exercised twice: a run with findings (the overflow
// fixture) and a clean run (results must be [], not null).
func TestSARIFOutputValidates(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "analyzers", "testdata", "src", "overflow")
	clean := filepath.Join("..", "..", "internal", "checked")
	for _, tc := range []struct {
		name     string
		args     []string
		wantCode int
		wantMin  int
	}{
		{"findings", []string{"-run", "overflow", "-format", "sarif", fixture}, 1, 1},
		{"clean", []string{"-format", "sarif", clean}, 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != tc.wantCode {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.wantCode, errOut.String())
			}
			n, err := validateSARIF(out.Bytes())
			if err != nil {
				t.Fatalf("SARIF invalid: %v\n%s", err, out.String())
			}
			if n < tc.wantMin {
				t.Errorf("SARIF has %d results, want >= %d", n, tc.wantMin)
			}
		})
	}
}

// validateSARIF is the offline structural validator: it decodes the
// log generically (so it checks the emitted JSON, not our own Go
// types) and enforces the SARIF 2.1.0 invariants the upload pipeline
// depends on. Returns the number of results.
func validateSARIF(data []byte) (int, error) {
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex *int   `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&log); err != nil {
		return 0, fmt.Errorf("decode (unknown fields are errors, catching shape drift): %w", err)
	}
	if log.Version != "2.1.0" {
		return 0, fmt.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		return 0, fmt.Errorf("$schema = %q does not pin sarif-2.1.0", log.Schema)
	}
	if len(log.Runs) != 1 {
		return 0, fmt.Errorf("%d runs, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name == "" {
		return 0, fmt.Errorf("tool.driver.name missing")
	}
	if len(r.Tool.Driver.Rules) == 0 {
		return 0, fmt.Errorf("no rules")
	}
	for i, rule := range r.Tool.Driver.Rules {
		if rule.ID == "" {
			return 0, fmt.Errorf("rules[%d] has empty id", i)
		}
		if rule.ShortDescription.Text == "" {
			return 0, fmt.Errorf("rule %s has no shortDescription.text", rule.ID)
		}
	}
	// results must be present even when empty ([] not null): GitHub's
	// ingestion treats a missing array as malformed.
	if !bytes.Contains(data, []byte(`"results"`)) {
		return 0, fmt.Errorf("results array missing entirely")
	}
	for i, res := range r.Results {
		if res.Message.Text == "" {
			return 0, fmt.Errorf("results[%d] has no message.text", i)
		}
		if res.RuleIndex == nil || *res.RuleIndex < 0 || *res.RuleIndex >= len(r.Tool.Driver.Rules) {
			return 0, fmt.Errorf("results[%d] ruleIndex out of range", i)
		}
		if rid := r.Tool.Driver.Rules[*res.RuleIndex].ID; rid != res.RuleID {
			return 0, fmt.Errorf("results[%d] ruleId %q != rules[%d].id %q", i, res.RuleID, *res.RuleIndex, rid)
		}
		if len(res.Locations) == 0 {
			return 0, fmt.Errorf("results[%d] has no locations", i)
		}
		for _, loc := range res.Locations {
			uri := loc.PhysicalLocation.ArtifactLocation.URI
			if uri == "" || strings.HasPrefix(uri, "/") || strings.Contains(uri, `\`) {
				return 0, fmt.Errorf("results[%d] uri %q must be relative with forward slashes", i, uri)
			}
			if loc.PhysicalLocation.Region.StartLine < 1 {
				return 0, fmt.Errorf("results[%d] startLine %d < 1", i, loc.PhysicalLocation.Region.StartLine)
			}
		}
	}
	return len(r.Results), nil
}

// BenchmarkNrlintModule times one full-module nrlint run — all seven
// analyzers, bottom-up facts, suppression — the cost `make lint` and
// CI pay. Recorded as nrlint_module_secs in BENCH_*.json.
func BenchmarkNrlintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out, errOut bytes.Buffer
		if code := run(nil, &out, &errOut); code != 0 {
			b.Fatalf("nrlint exited %d:\n%s%s", code, out.String(), errOut.String())
		}
	}
}
