package main

import (
	"encoding/json"
	"io"

	"github.com/gossipkit/noisyrumor/internal/analyzers"
)

// SARIF 2.1.0 output, the subset GitHub code scanning consumes: one
// run, one tool driver with a rule per analyzer (metadata lifted from
// each Analyzer.Doc) plus the synthetic "nrlint" rule for suppression
// policy findings, and one result per surviving finding with a
// physical location whose uri is module-relative under %SRCROOT%.
// Types are declared rather than built from map[string]any so the
// emitted shape is checked at compile time and field order is stable.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifPolicyRuleDoc documents the synthetic rule id carried by
// suppression-policy findings (bare, unknown-name, or stale
// //nrlint:allow directives), which no Analyzer in the suite owns.
const sarifPolicyRuleDoc = "suppression policy: every //nrlint:allow must name a known analyzer, carry a `-- reason` justification, and suppress at least one finding"

// writeSARIF emits the findings as a SARIF 2.1.0 log. Rules cover the
// analyzers that actually ran plus the policy rule, so every result's
// ruleId resolves to a rule entry and ruleIndex points into the rules
// array — the invariant GitHub's ingestion checks.
func writeSARIF(w io.Writer, suite []*analyzers.Analyzer, findings []finding) error {
	var rules []sarifRule
	index := map[string]int{}
	for _, a := range suite {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	index["nrlint"] = len(rules)
	rules = append(rules, sarifRule{ID: "nrlint", ShortDescription: sarifMessage{Text: sarifPolicyRuleDoc}})

	results := []sarifResult{}
	for _, f := range findings {
		idx, ok := index[f.Analyzer]
		if !ok {
			// Defensive: an unindexed analyzer name would break
			// ruleIndex resolution; fold it into the policy rule.
			idx = index["nrlint"]
		}
		results = append(results, sarifResult{
			RuleID:    rules[idx].ID,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "nrlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
