package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/gossipkit/noisyrumor
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRumorSpreading/n=1e5/backend=loop         	       2	4767817130 ns/op	 2409712 B/op	      35 allocs/op
BenchmarkRumorSpreading/n=1e5/backend=batch-8      	       2	 312101022 ns/op	 2410456 B/op	      66 allocs/op
BenchmarkPhaseBatchHuge 	       1	3023176979 ns/op	 377.09 MB/s	     128 B/op	       4 allocs/op
PASS
ok  	github.com/gossipkit/noisyrumor	141.389s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("platform: %q/%q", rep.Goos, rep.Goarch)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[1]
	if b.Name != "BenchmarkRumorSpreading/n=1e5/backend=batch" {
		t.Fatalf("cpu suffix not stripped: %q", b.Name)
	}
	if b.Iterations != 2 || b.NsPerOp != 312101022 {
		t.Fatalf("bench fields: %+v", b)
	}
	if b.Extra["allocs/op"] != 66 {
		t.Fatalf("extra: %+v", b.Extra)
	}
	if rep.Benchmarks[2].Extra["MB/s"] != 377.09 {
		t.Fatalf("MB/s: %+v", rep.Benchmarks[2].Extra)
	}
	speedup := rep.Derived["rumor_spreading_n1e5_speedup_batch_over_loop"]
	if speedup < 15.2 || speedup > 15.4 {
		t.Fatalf("speedup = %v", speedup)
	}
}

func TestRunEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-label", "BENCH_TEST", "-timestamp=false"},
		strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Label != "BENCH_TEST" || rep.Schema != "noisyrumor-bench/v1" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Generated != "" {
		t.Fatal("timestamp=false must omit Generated")
	}
}

func TestRunNoBenchmarks(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("nothing here\n"), &out); err == nil {
		t.Fatal("empty input accepted")
	}
}

const sampleHuge = `goos: linux
BenchmarkRumorSpreadingHuge/n=1e7/backend=batch      	       2	42660470332 ns/op
BenchmarkRumorSpreadingHuge/n=1e7/backend=parallel/threads=4-4      	       2	10665117583 ns/op
PASS
`

func TestDeriveParallelSpeedup(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleHuge))
	if err != nil {
		t.Fatal(err)
	}
	speedup := rep.Derived["rumor_spreading_n1e7_speedup_parallel_over_batch"]
	if speedup < 3.9 || speedup > 4.1 {
		t.Fatalf("parallel speedup = %v", speedup)
	}
	if _, ok := rep.Derived["rumor_spreading_n1e5_speedup_batch_over_loop"]; ok {
		t.Fatal("n=1e5 speedup derived without both backends present")
	}
}

const sampleSweep = `
goos: linux
BenchmarkSweepGridPoints 	       2	  68105860 ns/op	       176.2 points/s	 5297544 B/op	   14517 allocs/op
PASS
`

func TestDeriveSweepThroughput(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleSweep))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Derived["sweep_grid_points_per_sec"]; got != 176.2 {
		t.Fatalf("sweep throughput = %v, want 176.2", got)
	}
	// Absent the benchmark, the key must stay absent.
	rep, err = parse(strings.NewReader(sampleHuge))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Derived["sweep_grid_points_per_sec"]; ok {
		t.Fatal("sweep throughput derived without the benchmark present")
	}
}

const sampleQuant = `
goos: linux
BenchmarkCensusPhaseStage2      	      20	   3200000 ns/op	       0 B/op	       0 allocs/op
BenchmarkCensusPhaseStage2Quant 	      20	    160000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSweepGridPoints 	       2	  20619568 ns/op	       582.0 points/s	   98956 B/op	    1651 allocs/op
BenchmarkSweepGridPointsQuant 	       2	   2157284 ns/op	         0 dropped	        96.33 hit%	      5563 points/s	  152032 B/op	    4146 allocs/op
PASS
`

// TestDeriveQuantMetrics: the law-cache metrics — and the name-prefix
// disambiguation between the exact and Quant benchmarks — must derive
// correctly.
func TestDeriveQuantMetrics(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleQuant))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Derived["sweep_grid_points_per_sec"]; got != 582.0 {
		t.Fatalf("exact sweep throughput = %v, want 582 (prefix clash with Quant?)", got)
	}
	if got := rep.Derived["sweep_grid_points_per_sec_quant"]; got != 5563 {
		t.Fatalf("quantized sweep throughput = %v, want 5563", got)
	}
	if got := rep.Derived["sweep_grid_speedup_quant_over_exact"]; got < 9.5 || got > 9.6 {
		t.Fatalf("quantized sweep speedup = %v", got)
	}
	if got := rep.Derived["law_cache_hit_rate"]; got < 0.9632 || got > 0.9634 {
		t.Fatalf("law-cache hit rate = %v, want ≈ 0.9633", got)
	}
	if got := rep.Derived["stage2_phase_speedup_quant_over_exact"]; got != 20 {
		t.Fatalf("stage-2 phase speedup = %v, want 20", got)
	}
	// The dropped-stores count is emitted even at its healthy zero —
	// its absence, not its zero, is what signals an old bench run.
	if got, ok := rep.Derived["law_cache_dropped_stores"]; !ok || got != 0 {
		t.Fatalf("law_cache_dropped_stores = %v (present %v), want an explicit 0", got, ok)
	}
	// With only the exact pair present, the quant keys stay absent.
	rep, err = parse(strings.NewReader(sampleSweep))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"sweep_grid_points_per_sec_quant", "law_cache_hit_rate",
		"law_cache_dropped_stores",
		"stage2_phase_speedup_quant_over_exact", "sweep_grid_speedup_quant_over_exact"} {
		if _, ok := rep.Derived[key]; ok {
			t.Fatalf("%s derived without the quant benchmarks present", key)
		}
	}
}

const sampleObs = `
goos: linux
BenchmarkSweepGridPoints 	       2	  20619568 ns/op	       582.0 points/s	   98956 B/op	    1651 allocs/op
BenchmarkSweepGridPointsObs 	       2	  20825763 ns/op	       576.2 points/s	  101956 B/op	    1711 allocs/op
PASS
`

// TestDeriveObsOverhead: the instrumentation-overhead percentage must
// derive from the Obs/plain sweep pair — and the Obs benchmark's name,
// which also contains the plain one's as a prefix, must not clobber
// the exact throughput.
func TestDeriveObsOverhead(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleObs))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Derived["sweep_grid_points_per_sec"]; got != 582.0 {
		t.Fatalf("exact sweep throughput = %v, want 582 (prefix clash with Obs?)", got)
	}
	// 100·(582/576.2 − 1) ≈ 1.0066%.
	if got := rep.Derived["obs_overhead_pct"]; got < 1.0 || got > 1.02 {
		t.Fatalf("obs_overhead_pct = %v, want ≈ 1.01", got)
	}
	// Without the Obs benchmark the key stays absent.
	rep, err = parse(strings.NewReader(sampleSweep))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Derived["obs_overhead_pct"]; ok {
		t.Fatal("obs_overhead_pct derived without the Obs benchmark present")
	}
}

const sampleResil = `
goos: linux
BenchmarkSweepGridPoints 	       2	  20619568 ns/op	       582.0 points/s	   98956 B/op	    1651 allocs/op
BenchmarkSweepGridPointsResil 	       2	  20768312 ns/op	       577.8 points/s	  100116 B/op	    1688 allocs/op
BenchmarkShardMerge 	     100	  11711760 ns/op	 1890944 B/op	   12022 allocs/op
PASS
`

// TestDeriveResilienceMetrics: the resilience-seam overhead percentage
// must derive from the Resil/plain sweep pair — the Resil name also
// contains the plain one's as a prefix — and the shard-merge wall time
// must land in seconds.
func TestDeriveResilienceMetrics(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleResil))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Derived["sweep_grid_points_per_sec"]; got != 582.0 {
		t.Fatalf("exact sweep throughput = %v, want 582 (prefix clash with Resil?)", got)
	}
	// 100·(582/577.8 − 1) ≈ 0.727%.
	if got := rep.Derived["resilience_overhead_pct"]; got < 0.71 || got > 0.74 {
		t.Fatalf("resilience_overhead_pct = %v, want ≈ 0.73", got)
	}
	if got := rep.Derived["sweep_shard_merge_secs"]; got < 0.0117 || got > 0.0118 {
		t.Fatalf("sweep_shard_merge_secs = %v, want ≈ 0.0117", got)
	}
	// Without the resilience benchmarks the keys stay absent.
	rep, err = parse(strings.NewReader(sampleSweep))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"resilience_overhead_pct", "sweep_shard_merge_secs"} {
		if _, ok := rep.Derived[key]; ok {
			t.Fatalf("%s derived without the resilience benchmarks present", key)
		}
	}
}
