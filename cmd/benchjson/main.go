// Command benchjson converts `go test -bench` output (read from
// stdin) into the repository's perf-trajectory JSON format, so each
// PR can check in a BENCH_<n>.json snapshot that later PRs diff
// against.
//
//	go test -run '^$' -bench . -benchtime 2x . ./internal/model | \
//	    go run ./cmd/benchjson -label BENCH_1 > BENCH_1.json
//
// When both RumorSpreading backend benchmarks are present, the tool
// also emits the batch-over-loop speedup, the headline number of the
// sampling-backend engine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	Schema     string             `json:"schema"`
	Label      string             `json:"label"`
	Generated  string             `json:"generated,omitempty"`
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	label := fs.String("label", "BENCH", "snapshot label (e.g. BENCH_1)")
	stamp := fs.Bool("timestamp", true, "include the generation time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := parse(in)
	if err != nil {
		return err
	}
	rep.Label = *label
	if *stamp {
		rep.Generated = time.Now().UTC().Format(time.RFC3339)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// cpuSuffix strips the trailing -GOMAXPROCS that `go test` appends to
// benchmark names on multi-proc runs.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parse(in io.Reader) (*Report, error) {
	rep := &Report{Schema: "noisyrumor-bench/v1"}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       cpuSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			NsPerOp:    ns,
		}
		// Remaining fields come in "<value> <unit>" pairs
		// (MB/s, B/op, allocs/op, custom units).
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	derive(rep)
	return rep, nil
}

// derive computes cross-benchmark ratios of interest.
func derive(rep *Report) {
	var loop, batch, hugeBatch, hugeParallel float64
	var phaseBatchHuge, censusPhaseHuge, censusSweepHuge float64
	var sweepPointsPerSec, sweepPointsPerSecQuant, lawCacheHitRate float64
	var stage2Phase, stage2PhaseQuant, lawCacheDropped float64
	var sweepPointsPerSecObs, nrlintModule float64
	var sweepPointsPerSecResil, shardMerge float64
	var haveDropped bool
	for _, b := range rep.Benchmarks {
		switch {
		case strings.Contains(b.Name, "NrlintModule"):
			nrlintModule = b.NsPerOp
		case strings.Contains(b.Name, "ShardMerge"):
			shardMerge = b.NsPerOp
		case strings.Contains(b.Name, "SweepGridPointsResil"):
			// Same prefix trap as Quant/Obs: must precede plain
			// SweepGridPoints.
			sweepPointsPerSecResil = b.Extra["points/s"]
		case strings.Contains(b.Name, "SweepGridPointsQuant"):
			// Must precede the plain SweepGridPoints case: the quantized
			// benchmark's name contains the exact one's as a prefix.
			sweepPointsPerSecQuant = b.Extra["points/s"]
			lawCacheHitRate = b.Extra["hit%"]
			lawCacheDropped, haveDropped = b.Extra["dropped"]
		case strings.Contains(b.Name, "SweepGridPointsObs"):
			// Same prefix trap: must precede plain SweepGridPoints.
			sweepPointsPerSecObs = b.Extra["points/s"]
		case strings.Contains(b.Name, "SweepGridPoints"):
			sweepPointsPerSec = b.Extra["points/s"]
		case strings.Contains(b.Name, "CensusPhaseStage2Quant"):
			// Same prefix trap as the sweep pair.
			stage2PhaseQuant = b.NsPerOp
		case strings.Contains(b.Name, "CensusPhaseStage2"):
			stage2Phase = b.NsPerOp
		case strings.HasSuffix(b.Name, "backend=loop") && strings.Contains(b.Name, "RumorSpreading/"):
			loop = b.NsPerOp
		case strings.HasSuffix(b.Name, "backend=batch") && strings.Contains(b.Name, "RumorSpreading/"):
			batch = b.NsPerOp
		case strings.HasSuffix(b.Name, "backend=batch") && strings.Contains(b.Name, "RumorSpreadingHuge/"):
			hugeBatch = b.NsPerOp
		case strings.Contains(b.Name, "backend=parallel") && strings.Contains(b.Name, "RumorSpreadingHuge/"):
			hugeParallel = b.NsPerOp
		case strings.Contains(b.Name, "PhaseBatchHuge"):
			phaseBatchHuge = b.NsPerOp
		case strings.Contains(b.Name, "CensusPhaseHuge"):
			censusPhaseHuge = b.NsPerOp
		case strings.Contains(b.Name, "CensusSweepHuge"):
			censusSweepHuge = b.NsPerOp
		}
	}
	add := func(key string, v float64) {
		if rep.Derived == nil {
			rep.Derived = map[string]float64{}
		}
		rep.Derived[key] = v
	}
	if loop > 0 && batch > 0 {
		add("rumor_spreading_n1e5_speedup_batch_over_loop", loop/batch)
	}
	if hugeBatch > 0 && hugeParallel > 0 {
		add("rumor_spreading_n1e7_speedup_parallel_over_batch", hugeBatch/hugeParallel)
	}
	// The census headline: same phase workload at the largest common
	// n (10⁷), aggregate census engine vs batch backend.
	if phaseBatchHuge > 0 && censusPhaseHuge > 0 {
		add("phase_n1e7_speedup_census_over_batch", phaseBatchHuge/censusPhaseHuge)
	}
	// A full n = 10⁹ census sweep against a full n = 10⁷ batch run:
	// how much further the aggregate engine reaches end to end.
	if hugeBatch > 0 && censusSweepHuge > 0 {
		add("full_run_census_n1e9_speedup_over_batch_n1e7", hugeBatch/censusSweepHuge)
	}
	// The phase-diagram instrument's throughput: threshold-straddling
	// grid points (n = 10⁵, 25 trials each) evaluated per second,
	// exact and under the η = 10⁻³ Stage-2 law cache.
	if sweepPointsPerSec > 0 {
		add("sweep_grid_points_per_sec", sweepPointsPerSec)
	}
	if sweepPointsPerSecQuant > 0 {
		add("sweep_grid_points_per_sec_quant", sweepPointsPerSecQuant)
	}
	if sweepPointsPerSec > 0 && sweepPointsPerSecQuant > 0 {
		add("sweep_grid_speedup_quant_over_exact", sweepPointsPerSecQuant/sweepPointsPerSec)
	}
	// Instrumentation overhead: how much slower the exact grid runs
	// with live registry metrics on every layer (BenchmarkSweepGrid-
	// PointsObs vs the uninstrumented headline), in percent. The
	// observability contract (DESIGN.md §2) budgets this at ≤ 2.
	if sweepPointsPerSec > 0 && sweepPointsPerSecObs > 0 {
		add("obs_overhead_pct", 100*(sweepPointsPerSec/sweepPointsPerSecObs-1))
	}
	// Resilience-seam overhead: the exact grid with a never-firing
	// fault injector and the default retry policy armed on every site
	// (BenchmarkSweepGridPointsResil vs the uninstrumented headline),
	// in percent. The robustness contract budgets this at ≤ 2.
	if sweepPointsPerSec > 0 && sweepPointsPerSecResil > 0 {
		add("resilience_overhead_pct", 100*(sweepPointsPerSec/sweepPointsPerSecResil-1))
	}
	// Wall-clock seconds to merge four shard journals (512 points)
	// into the single-host checkpoint — the fixed cost a sharded sweep
	// pays over running on one host.
	if shardMerge > 0 {
		add("sweep_shard_merge_secs", shardMerge/1e9)
	}
	// The realized law-cache hit rate of the quantized sweep (0..1).
	if lawCacheHitRate > 0 {
		add("law_cache_hit_rate", lawCacheHitRate/100)
	}
	// Store attempts the quantized sweep's cache refused at capacity.
	// Zero is the healthy value and is emitted deliberately: a nonzero
	// count means the bench grid no longer fits maxLawCacheEntries and
	// the hit rate above is understating the steady-state cost.
	if haveDropped {
		add("law_cache_dropped_stores", lawCacheDropped)
	}
	// One n = 10⁹ Stage-2 phase, exact vs steady-state quantized — the
	// per-phase view of the law cache.
	if stage2Phase > 0 && stage2PhaseQuant > 0 {
		add("stage2_phase_speedup_quant_over_exact", stage2Phase/stage2PhaseQuant)
	}
	// Wall-clock seconds for one full-module nrlint run (all seven
	// analyzers, bottom-up facts): the cost every `make lint` and CI
	// lint job pays, tracked so the interprocedural layer's growth
	// stays visible in the perf trajectory.
	if nrlintModule > 0 {
		add("nrlint_module_secs", nrlintModule/1e9)
	}
}
