package main

import (
	"flag"
	"io"
	"strings"
	"testing"

	"github.com/gossipkit/noisyrumor/internal/core"
)

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("10, 20,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("parseCounts = %v", got)
	}
	if _, err := parseCounts("10,x"); err == nil {
		t.Fatal("bad count accepted")
	}
}

func TestMakeMatrix(t *testing.T) {
	cases := []struct {
		name string
		k    int
		eps  float64
		ok   bool
	}{
		{"uniform", 3, 0.2, true},
		{"binary", 2, 0.2, true},
		{"identity", 4, 0, true},
		{"cycle", 3, 0.1, true},
		{"reset", 3, 0.2, true},
		{"nope", 3, 0.2, false},
	}
	for _, c := range cases {
		m, err := makeMatrix(c.name, c.k, c.eps)
		if c.ok && err != nil {
			t.Fatalf("makeMatrix(%s): %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("makeMatrix(%s) accepted", c.name)
		}
		if c.ok && m == nil {
			t.Fatalf("makeMatrix(%s) returned nil", c.name)
		}
	}
}

func TestRunRumorSmoke(t *testing.T) {
	// End-to-end through the flag surface, at a tiny scale.
	var b strings.Builder
	if err := run([]string{"-n", "300", "-k", "2", "-eps", "0.4", "-seed", "1", "-trace"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"consensus=", "memory:", "phase trace"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPluralitySmoke(t *testing.T) {
	if err := run([]string{"-n", "300", "-k", "3", "-eps", "0.4",
		"-counts", "60,40,20", "-seed", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-matrix", "bogus"}, io.Discard); err == nil {
		t.Fatal("bogus matrix accepted")
	}
	if err := run([]string{"-n", "300", "-k", "3", "-eps", "0.4",
		"-counts", "1,2"}, io.Discard); err == nil {
		t.Fatal("count/k mismatch accepted")
	}
}

func TestRunParallelBackendSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "400", "-k", "2", "-eps", "0.4", "-seed", "3",
		"-backend", "parallel", "-threads", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "consensus=") {
		t.Fatalf("output missing consensus line:\n%s", b.String())
	}
	if err := run([]string{"-n", "400", "-k", "2", "-eps", "0.4",
		"-backend", "warp"}, io.Discard); err == nil {
		t.Fatal("bogus backend accepted")
	}
}

// TestRunRejectsContradictoryFlags: flag combinations in which one
// flag would silently override or ignore the other must be rejected
// with an actionable message, one case per combination.
func TestRunRejectsContradictoryFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"backend with census engine", []string{"-n", "300", "-k", "2", "-eps", "0.4",
			"-engine", "census", "-backend", "parallel"}},
		{"threads with census engine", []string{"-n", "300", "-k", "2", "-eps", "0.4",
			"-engine", "census", "-threads", "8"}},
		{"threads without parallel backend", []string{"-n", "300", "-k", "2", "-eps", "0.4",
			"-threads", "4"}},
		{"threads with batch backend", []string{"-n", "300", "-k", "2", "-eps", "0.4",
			"-backend", "batch", "-threads", "4"}},
		{"correct with counts", []string{"-n", "300", "-k", "3", "-eps", "0.4",
			"-counts", "60,40,20", "-correct", "1"}},
		{"law-quant without census engine", []string{"-n", "300", "-k", "2", "-eps", "0.4",
			"-law-quant", "1e-3"}},
		{"law-quant with per-node engine", []string{"-n", "300", "-k", "2", "-eps", "0.4",
			"-engine", "B", "-law-quant", "1e-3"}},
		{"census-tol without census engine", []string{"-n", "300", "-k", "2", "-eps", "0.4",
			"-census-tol", "1e-9"}},
		{"census-tol with per-node engine", []string{"-n", "300", "-k", "2", "-eps", "0.4",
			"-engine", "P", "-census-tol", "1e-9"}},
	}
	for _, c := range cases {
		if err := run(c.args, io.Discard); err == nil {
			t.Errorf("%s: accepted silently", c.name)
		}
	}
	// The near-miss combinations must still work: an explicit
	// -threads with -backend parallel, and -correct for rumor spreading.
	if err := run([]string{"-n", "300", "-k", "2", "-eps", "0.4",
		"-backend", "parallel", "-threads", "2"}, io.Discard); err != nil {
		t.Errorf("parallel+threads rejected: %v", err)
	}
	if err := run([]string{"-n", "300", "-k", "3", "-eps", "0.4", "-correct", "1"}, io.Discard); err != nil {
		t.Errorf("rumor -correct rejected: %v", err)
	}
	// The census knobs with the census engine are the intended use.
	if err := run([]string{"-n", "300", "-k", "2", "-eps", "0.4",
		"-engine", "census", "-law-quant", "1e-3", "-census-tol", "1e-9"}, io.Discard); err != nil {
		t.Errorf("census engine with -law-quant/-census-tol rejected: %v", err)
	}
}

// TestRunCensusPrintsErrorBudget: the aggregate engine's truncation
// budget must be visible in the default output and, cumulatively, in
// the -trace lines (DESIGN §2's promise).
func TestRunCensusPrintsErrorBudget(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "50000", "-k", "3", "-eps", "0.3", "-seed", "9",
		"-engine", "census", "-counts", "30000,15000,5000", "-trace"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"error budget: ", "Lemma-3 mass", "quantization leg", "budget=", "quant="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Stage-2 phases truncate, so the final budget must be positive.
	if strings.Contains(out, "error budget: 0.000e+00") {
		t.Fatalf("census run reports a zero budget after Stage 2:\n%s", out)
	}
	// Rumor spreading on the census engine must print it too.
	b.Reset()
	if err := run([]string{"-n", "50000", "-k", "2", "-eps", "0.4", "-seed", "9",
		"-engine", "census"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "error budget: ") {
		t.Fatalf("rumor-spreading census output missing the budget:\n%s", b.String())
	}
}

func TestRunCensusEngineSmoke(t *testing.T) {
	// The n ≥ 10⁹ one-liner through the flag surface: a population
	// beyond int32 range must parse, run on the aggregate engine and
	// report within seconds.
	var b strings.Builder
	if err := run([]string{"-n", "2200000000", "-k", "2", "-eps", "0.4", "-seed", "4",
		"-engine", "census", "-counts", "1200000000,1000000000"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"engine=census", "consensus=true", "census engine tracks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"-engine", "warp"}, io.Discard); err == nil {
		t.Fatal("bogus engine accepted")
	}
}

// TestFlagUniverseMatches: the binary's registered flag set is
// exactly the universe declared in core.FlagUniverses["noisyrumor"], so a
// new flag cannot ship without classifying its interactions in the
// shared rejection table (see internal/core/flags.go).
func TestFlagUniverseMatches(t *testing.T) {
	fs := flag.NewFlagSet("noisyrumor", flag.ContinueOnError)
	_ = registerFlags(fs)
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { got[f.Name] = true })
	want := map[string]bool{}
	for _, name := range core.FlagUniverses["noisyrumor"] {
		want[name] = true
	}
	for name := range got {
		if !want[name] {
			t.Errorf("flag -%s is registered but missing from core.FlagUniverses[%q]", name, "noisyrumor")
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("core.FlagUniverses[%q] lists -%s but the binary does not register it", "noisyrumor", name)
		}
	}
}
