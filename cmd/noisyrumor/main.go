// Command noisyrumor runs a single noisy rumor-spreading or plurality-
// consensus simulation and prints the outcome (optionally with the
// full per-phase trace).
//
// Examples:
//
//	noisyrumor -n 10000 -k 4 -eps 0.25 -seed 1
//	noisyrumor -n 10000 -k 3 -eps 0.2 -counts 600,500,400 -trace
//	noisyrumor -n 5000 -k 3 -eps 0.1 -matrix cycle
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/gossipkit/noisyrumor"
	"github.com/gossipkit/noisyrumor/internal/checked"
	"github.com/gossipkit/noisyrumor/internal/core"
	"github.com/gossipkit/noisyrumor/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "noisyrumor:", err)
		os.Exit(1)
	}
}

// cliFlags is the binary's full flag set; registration is separate
// from run so the tests can assert it matches the CLI's declared
// universe in core.FlagUniverses.
type cliFlags struct {
	n         *int64
	k         *int
	eps       *float64
	seed      *uint64
	trace     *bool
	matrix    *string
	counts    *string
	correct   *int
	engine    *string
	backend   *string
	threads   *int
	lawQuant  *float64
	censusTol *float64
}

func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		n:       fs.Int64("n", 10000, "number of agents (the census engine accepts n ≥ 10⁹)"),
		k:       fs.Int("k", 3, "number of opinions"),
		eps:     fs.Float64("eps", 0.25, "noise parameter ε"),
		seed:    fs.Uint64("seed", 1, "random seed"),
		trace:   fs.Bool("trace", false, "print the per-phase trace"),
		matrix:  fs.String("matrix", "uniform", "noise matrix: uniform | binary | identity | cycle | reset"),
		counts:  fs.String("counts", "", "comma-separated initial opinion counts (plurality consensus); empty = rumor spreading from one source"),
		correct: fs.Int("correct", 0, "the source's opinion (rumor spreading only)"),
		engine:  fs.String("engine", "", "communication engine: "+strings.Join(noisyrumor.Engines(), " | ")+" (empty = O; census is the n-independent aggregate engine)"),
		backend: fs.String("backend", "", "sampling backend: "+strings.Join(noisyrumor.Backends(), " | ")+" (empty = loop; census engine ignores it)"),
		threads: fs.Int("threads", 0, "intra-phase worker count for the parallel backend (0 = GOMAXPROCS)"),
		lawQuant: fs.Float64("law-quant", 0,
			"census Stage-2 law quantization step η: memoize the majority law on the η-lattice, charging the law-level certificate ℓ·d_TV·sens per phase into the error budget (0 = exact; try 1e-3; census engine only)"),
		censusTol: fs.Float64("census-tol", 0,
			"census Stage-2 truncation tolerance override (0 = the engine default 1e-13; census engine only)"),
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("noisyrumor", flag.ContinueOnError)
	cf := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, k, eps, seed := cf.n, cf.k, cf.eps, cf.seed
	trace, matrix, counts, correct := cf.trace, cf.matrix, cf.counts, cf.correct
	engine, backend, threads := cf.engine, cf.backend, cf.threads
	lawQuant, censusTol := cf.lawQuant, cf.censusTol
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	proc, err := model.ProcessByName(*engine)
	if err != nil {
		return err
	}
	// Reject contradictory flag combinations via the shared table
	// (internal/core/flags.go) instead of silently ignoring the
	// losing flag.
	state := core.FlagState{
		Set:          set,
		CensusEngine: proc == noisyrumor.ProcessCensus,
		Backend:      *backend,
	}
	if err := core.CheckFlags(state, core.FlagUniverses["noisyrumor"]); err != nil {
		return err
	}
	nm, err := makeMatrix(*matrix, *k, *eps)
	if err != nil {
		return err
	}
	cfg := noisyrumor.Config{
		N:         *n,
		Noise:     nm,
		Params:    noisyrumor.DefaultParams(*eps),
		Seed:      *seed,
		Trace:     *trace,
		Engine:    proc,
		Backend:   *backend,
		Threads:   *threads,
		LawQuant:  *lawQuant,
		CensusTol: *censusTol,
	}
	header := fmt.Sprintf("n=%d k=%d ε=%v matrix=%s engine=%v seed=%d", *n, nm.K(), *eps, *matrix, proc, *seed)

	if proc == noisyrumor.ProcessCensus {
		return runCensus(cfg, nm, *counts, *correct, header, *trace, out)
	}

	var res noisyrumor.Result
	if *counts == "" {
		res, err = noisyrumor.RumorSpreading(cfg, noisyrumor.Opinion(*correct))
	} else {
		var cs []int64
		cs, err = parseCounts(*counts)
		if err != nil {
			return err
		}
		if len(cs) != nm.K() {
			return fmt.Errorf("%d counts for k=%d", len(cs), nm.K())
		}
		narrow := make([]int, len(cs))
		for i, v := range cs {
			w, ok := checked.Int(v)
			if !ok {
				return fmt.Errorf("count %d exceeds the per-node engines' range; use -engine census", v)
			}
			narrow[i] = w
		}
		res, err = noisyrumor.PluralityConsensus(cfg, narrow)
	}
	if err != nil {
		return err
	}

	fmt.Fprintln(out, header)
	fmt.Fprintf(out, "consensus=%v winner=%d correct=%v rounds=%d (first all-correct: %d)\n",
		res.Consensus, res.Winner, res.Correct, res.Rounds, res.FirstAllCorrect)
	fmt.Fprintf(out, "memory: max phase counter %d → %d bits of counters per node\n",
		res.MaxCounter, res.MemoryBits)
	if *trace {
		fmt.Fprintln(out, "\nphase trace (stage/phase, rounds, opinionated, bias toward correct):")
		for _, ph := range res.Trace {
			fmt.Fprintf(out, "  s%d p%-3d rounds=%-6d opinionated=%-8d bias=%+.4f\n",
				ph.Stage, ph.Phase, ph.Rounds, ph.Opinionated, ph.Bias)
		}
	}
	return nil
}

// runCensus is the aggregate-engine path: it calls the facade's
// RunCensus directly (rather than the Result-typed wrappers) so the
// run's accumulated Lemma-3 budget — truncation plus the law-level
// quantization leg — is available to print next to the outcome, as
// DESIGN §2 promises.
func runCensus(cfg noisyrumor.Config, nm *noisyrumor.NoiseMatrix,
	counts string, correct int, header string, trace bool, out io.Writer) error {

	var cs []int64
	var correctOp noisyrumor.Opinion
	if counts == "" {
		if correct < 0 || correct >= nm.K() {
			return fmt.Errorf("source opinion %d out of range [0,%d)", correct, nm.K())
		}
		correctOp = noisyrumor.Opinion(correct)
		cs = make([]int64, nm.K())
		cs[correctOp] = 1
	} else {
		var err error
		cs, err = parseCounts(counts)
		if err != nil {
			return err
		}
		if len(cs) != nm.K() {
			return fmt.Errorf("%d counts for k=%d", len(cs), nm.K())
		}
		var strict bool
		correctOp, strict = int64Plurality(cs)
		if !strict {
			return fmt.Errorf("initial counts %v have no strict plurality", cs)
		}
	}
	res, err := noisyrumor.RunCensus(cfg, cs, correctOp)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, header)
	fmt.Fprintf(out, "consensus=%v winner=%d correct=%v rounds=%d (first all-correct: %d)\n",
		res.Consensus, res.Winner, res.Correct, res.Rounds, res.FirstAllCorrect)
	fmt.Fprintln(out, "memory: census engine tracks the aggregate opinion census only (no per-node counters)")
	fmt.Fprintf(out, "error budget: %.3e (accumulated Lemma-3 mass of the run, of which %.3e is the law-level quantization leg; see DESIGN §2)\n",
		res.ErrorBudget, res.QuantBudget)
	if trace {
		fmt.Fprintln(out, "\nphase trace (stage/phase, rounds, opinionated, bias toward correct, accumulated budget with quant leg):")
		for _, ph := range res.Trace {
			fmt.Fprintf(out, "  s%d p%-3d rounds=%-6d opinionated=%-8d bias=%+.4f budget=%.3e quant=%.3e\n",
				ph.Stage, ph.Phase, ph.Rounds, ph.Opinionated, ph.Bias, ph.ErrorBudget, ph.QuantBudget)
		}
	}
	return nil
}

func makeMatrix(name string, k int, eps float64) (*noisyrumor.NoiseMatrix, error) {
	switch name {
	case "uniform":
		return noisyrumor.UniformNoise(k, eps)
	case "binary":
		return noisyrumor.BinaryNoise(eps)
	case "identity":
		return noisyrumor.IdentityNoise(k)
	case "cycle":
		return noisyrumor.DominantCycleNoise(k, eps)
	case "reset":
		return noisyrumor.ResetNoise(k, eps)
	default:
		return nil, fmt.Errorf("unknown matrix %q", name)
	}
}

// int64Plurality returns the strict-argmax opinion of a count vector
// (the census path keeps int64 counts end to end: a single opinion
// class can exceed the int range the per-node entry points accept).
func int64Plurality(cs []int64) (noisyrumor.Opinion, bool) {
	best, bestCount, ties := noisyrumor.Undecided, int64(-1), 0
	for i, v := range cs {
		switch {
		case v > bestCount:
			best, bestCount, ties = noisyrumor.Opinion(i), v, 1
		case v == bestCount:
			ties++
		}
	}
	if bestCount <= 0 {
		return noisyrumor.Undecided, false
	}
	return best, ties == 1
}

func parseCounts(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
